// Microbenchmarks of the substrate kernels (google-benchmark): local
// sorts, the loser-tree merge, the radix kernel, the subblock index maps,
// channel throughput, and striped-file I/O. These are the constants the
// cost model's CPU terms abstract.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "ipc/communicator.hpp"
#include "matrix/subblock.hpp"
#include "record/generator.hpp"
#include "record/ops.hpp"
#include "sortlib/kway_merge.hpp"
#include "sortlib/local_sort.hpp"
#include "vdisk/striped_file.hpp"
#include "vdisk/disk_array.hpp"

namespace {

using oocs::rec::Record64;

std::vector<Record64> make_input(std::uint64_t n, std::uint64_t seed) {
  std::vector<Record64> v(n);
  oocs::rec::GenSpec spec{oocs::rec::Dist::kUniform, seed, 0};
  oocs::rec::generate_records(v.data(), n, spec, 0);
  return v;
}

void BM_LocalSortComparison(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = make_input(n, 3);
  std::vector<Record64> work;
  for (auto _ : state) {
    work = input;
    oocs::sortlib::local_sort(work.data(), n);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n *
                                                    sizeof(Record64)));
}
BENCHMARK(BM_LocalSortComparison)->Range(1 << 10, 1 << 16);

void BM_LocalSortRadix(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = make_input(n, 3);
  std::vector<Record64> work, scratch;
  for (auto _ : state) {
    work = input;
    oocs::sortlib::local_sort(work.data(), n, oocs::sortlib::LocalSortAlgo::kRadix,
                              &scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n *
                                                    sizeof(Record64)));
}
BENCHMARK(BM_LocalSortRadix)->Range(1 << 10, 1 << 16);

void BM_KwayMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t k = 16;
  auto input = make_input(n, 5);
  const auto runs = oocs::sortlib::uniform_runs(n, n / k);
  for (const auto& run : runs) {
    std::sort(input.begin() + static_cast<std::ptrdiff_t>(run.offset),
              input.begin() + static_cast<std::ptrdiff_t>(run.offset + run.length),
              [](const Record64& a, const Record64& b) { return a.key < b.key; });
  }
  std::vector<Record64> out(n);
  for (auto _ : state) {
    oocs::sortlib::kway_merge(input.data(), runs, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n *
                                                    sizeof(Record64)));
}
BENCHMARK(BM_KwayMerge)->Range(1 << 12, 1 << 16);

void BM_SubblockIndexMap(benchmark::State& state) {
  const oocs::matrix::Dims d{1 << 16, 1 << 8};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 4096; ++i) {
      const auto p = oocs::matrix::subblock_dest(d, i, i % d.s);
      sink += p.row + p.col;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 4096));
}
BENCHMARK(BM_SubblockIndexMap);

void BM_FabricSendRecv(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  oocs::ipc::Fabric fabric(1);
  oocs::ipc::Comm comm = fabric.comm(0);
  std::vector<std::byte> payload(bytes);
  std::uint64_t tag = 0;
  for (auto _ : state) {
    comm.send(0, ++tag, payload);
    auto got = comm.recv(0, tag);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_FabricSendRecv)->Range(1 << 10, 1 << 20);

void BM_StripedFileWrite(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto dir = std::filesystem::temp_directory_path() / "oocs-micro-disk";
  std::filesystem::remove_all(dir);
  oocs::vdisk::DiskArray disks(dir, 4, 1);
  oocs::vdisk::StripedFile file(disks.owned_by(0), "bench", 1 << 16);
  std::vector<std::byte> payload(bytes, std::byte{7});
  std::uint64_t offset = 0;
  for (auto _ : state) {
    file.write(offset % (64u << 20), payload);
    offset += bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StripedFileWrite)->Range(1 << 16, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
