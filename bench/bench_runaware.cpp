// Footnote 5 ablation: "The implementation takes advantage of the sorted
// runs to sort by merging." Compares run-aware sort stages (k-way merge of
// the runs the previous pass appended) against full re-sorts, at equal
// correctness.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 4, "processors"));
  const std::int64_t total_mib = cli.int_flag("total-mib", 32, "total data (MiB)");
  const int iters = static_cast<int>(cli.int_flag("iters", 2, "iterations"));
  if (!cli.finish()) return 0;

  const std::size_t rec = 64;
  const std::uint64_t n = (static_cast<std::uint64_t>(total_mib) << 20) / rec;

  std::printf("== Run-aware sort stages (paper footnote 5) ==\n");
  std::printf("%-14s %-12s %-12s %-12s %-10s\n", "algorithm", "run-aware", "wall s",
              "sort busy s", "check");
  rule('-', 64);
  for (core::Algo algo : {core::Algo::kThreaded, core::Algo::kSubblock}) {
    for (bool run_aware : {true, false}) {
      double wall = 0, sort_busy = 0;
      bool ok = true;
      for (int it = 0; it < iters; ++it) {
        core::SortJob job;
        job.cfg.n = n;
        job.cfg.mem_per_rank = (1u << 20) / rec;
        job.cfg.nranks = nranks;
        job.cfg.ndisks = nranks;
        job.cfg.record_bytes = rec;
        job.cfg.stripe_block_bytes = 1 << 14;
        job.cfg.run_aware = run_aware;
        job.algo = algo;
        job.gen.seed = static_cast<std::uint64_t>(it) + 1;
        job.workdir = workspace("runaware");
        const auto outcome = core::run_sort_job(job);
        wall += outcome.metrics.wall_s / iters;
        for (const auto& pass : outcome.metrics.passes) {
          sort_busy += pass.stages.sort / iters;
        }
        ok = ok && outcome.verify.ok();
        cleanup(job.workdir);
      }
      std::printf("%-14s %-12s %-12.3f %-12.3f %-10s\n", core::algo_name(algo),
                  run_aware ? "merge" : "full sort", wall, sort_busy,
                  ok ? "sorted" : "FAILED");
    }
  }
  rule('-', 64);
  std::printf("Expected: the merge rows spend materially less time in the sort stage\n"
              "(O(n log k) merging vs O(n log n) sorting), with identical output.\n");
  return 0;
}
