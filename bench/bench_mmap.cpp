// §6 future work: "we do expect to investigate memory-mapped I/O to
// eliminate unnecessary copying of data."
//
// Same job, two substrates: pread/pwrite syscalls versus mmap (copies go
// straight through the page cache, no syscall per access after the first
// fault). Disk traffic counters are identical by construction — only the
// wall time moves, and only by the syscall/copy overhead, since both modes
// ride the page cache at bench scale.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

namespace {

double run_once(core::Algo algo, vdisk::IoMode mode, const core::JobConfig& cfg,
                bool& ok) {
  core::SortJob job;
  job.cfg = cfg;
  job.algo = algo;
  job.io_mode = mode;
  job.gen.seed = 99;
  job.workdir = workspace(std::string("mmap-") + core::algo_name(algo) +
                          (mode == vdisk::IoMode::kMmap ? "-mm" : "-pr"));
  const auto outcome = core::run_sort_job(job);
  ok = outcome.verify.ok();
  cleanup(job.workdir);
  return outcome.metrics.wall_s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 4, "processors P"));
  const std::int64_t n_log2 = cli.int_flag("n-log2", 16, "records to sort, log2");
  const std::int64_t mem_log2 =
      cli.int_flag("mem-log2", 12, "records of memory per rank, log2");
  const int iters = static_cast<int>(cli.int_flag("iters", 3, "repeats per cell"));
  if (!cli.finish()) return 0;

  core::JobConfig cfg;
  cfg.n = 1ull << n_log2;
  cfg.mem_per_rank = 1ull << mem_log2;
  cfg.nranks = nranks;
  cfg.ndisks = nranks;
  cfg.record_bytes = 64;
  cfg.stripe_block_bytes = 1 << 12;

  std::printf("== mmap vs pread substrate (§6), N=2^%lld x 64 B, P=%d ==\n",
              static_cast<long long>(n_log2), nranks);
  std::printf("%-16s %-14s %-14s %-10s\n", "algorithm", "pread s", "mmap s",
              "mmap/pread");
  rule('-', 60);
  for (core::Algo algo : {core::Algo::kThreaded, core::Algo::kSubblock,
                          core::Algo::kMColumn}) {
    std::string why;
    if (!core::try_make_plan(algo, cfg, &why)) {
      std::printf("%-16s -\n", core::algo_name(algo));
      continue;
    }
    double pread_s = 0, mmap_s = 0;
    bool ok_a = true, ok_b = true;
    for (int it = 0; it < iters; ++it) {
      pread_s += run_once(algo, vdisk::IoMode::kPread, cfg, ok_a);
      mmap_s += run_once(algo, vdisk::IoMode::kMmap, cfg, ok_b);
    }
    pread_s /= iters;
    mmap_s /= iters;
    std::printf("%-16s %-14.4f %-14.4f %-10.2f%s\n", core::algo_name(algo), pread_s,
                mmap_s, mmap_s / pread_s, ok_a && ok_b ? "" : "  FAILED");
  }
  rule('-', 60);
  std::printf(
      "Both modes move identical bytes; the ratio isolates syscall/copy overhead\n"
      "against mmap's page-fault + per-op locking cost. At page-cache speeds the\n"
      "syscalls are not the bottleneck, so mmap shows no win here — evidence for\n"
      "why the paper left this as 'investigate' rather than a claimed gain.\n");
  return 0;
}
