// Shared scaffolding for the benchmark binaries: workspace management and
// table printing. Every bench defaults to laptop-scale sizes so the whole
// suite runs in minutes; flags scale everything up.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/oocsort.hpp"
#include "util/cli.hpp"

namespace oocs::bench {

inline std::filesystem::path workspace(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("oocs-bench-" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

inline void cleanup(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

inline double mib(double bytes) { return bytes / (1024.0 * 1024.0); }

inline void rule(char c = '-', int n = 100) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace oocs::bench
