// §5's baseline: the I/O-only portions of three and four passes, used to
// measure how I/O-bound each algorithm is. Reports measured I/O-only time
// next to each algorithm's full time and the resulting "non-I/O wait"
// fraction — the paper's key diagnostic for Figure 2.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 4, "processors"));
  const std::int64_t total_mib = cli.int_flag("total-mib", 32, "total data (MiB)");
  const double throttle =
      cli.double_flag("throttle-mbps", 30.0, "disk model MB/s (0 = off)");
  if (!cli.finish()) return 0;

  const std::size_t rec = 64;
  const std::uint64_t n = (static_cast<std::uint64_t>(total_mib) << 20) / rec;
  const std::uint64_t buffer = 1u << 20;

  core::JobConfig cfg;
  cfg.n = n;
  cfg.mem_per_rank = buffer / rec;
  cfg.nranks = nranks;
  cfg.ndisks = nranks;
  cfg.record_bytes = rec;
  cfg.stripe_block_bytes = 1 << 14;

  const auto dir = workspace("iobase");
  vdisk::Throttle th;
  th.bandwidth_bytes_per_s = throttle * 1e6;
  vdisk::DiskArray disks(dir, cfg.ndisks, cfg.nranks, th);
  clu::Cluster cluster(cfg.nranks);
  const rec::RecordOps& ops = rec::record_ops_for_size(rec);

  std::printf("== I/O baselines vs full algorithms (paper §5), %lld MiB total, "
              "%.0f MB/s disks ==\n",
              static_cast<long long>(total_mib), throttle);
  std::printf("%-34s %-10s %-16s\n", "run", "wall s", "vs 3-pass I/O");
  rule('-', 64);

  double io3 = 0;
  for (int passes : {3, 4}) {
    const core::Plan plan = core::make_plan(core::Algo::kThreaded, cfg);
    rec::GenSpec gen{rec::Dist::kUniform, 5, 0};
    (void)core::generate_input(cluster, disks, plan, cfg, ops, gen);
    const auto metrics = core::run_io_baseline(cluster, disks, plan, cfg, passes);
    if (passes == 3) io3 = metrics.wall_s;
    std::printf("baseline I/O, %d passes            %-10.3f %-16.2f\n", passes,
                metrics.wall_s, metrics.wall_s / io3);
  }

  for (core::Algo algo :
       {core::Algo::kThreaded, core::Algo::kSubblock, core::Algo::kMColumn}) {
    std::string why;
    auto plan = core::try_make_plan(algo, cfg, &why);
    if (!plan) {
      std::printf("%-34s (infeasible at this buffer)\n", core::algo_name(algo));
      continue;
    }
    rec::GenSpec gen{rec::Dist::kUniform, 5, 0};
    (void)core::generate_input(cluster, disks, *plan, cfg, ops, gen);
    const auto metrics = core::run_algorithm(cluster, disks, *plan, cfg, ops);
    std::printf("%-34s %-10.3f %-16.2f\n", core::algo_name(algo), metrics.wall_s,
                metrics.wall_s / io3);
  }
  rule('-', 64);
  std::printf("Paper expectation: threaded ~= 3-pass baseline (almost purely\n"
              "I/O-bound); subblock ~= 4-pass baseline; M-columnsort well above the\n"
              "3-pass baseline (compute/communication-bound).\n");
  cleanup(dir);
  return 0;
}
