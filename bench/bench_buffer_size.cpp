// §5's buffer-size effect: "We found that with only one exception, larger
// buffer sizes resulted in faster execution" — smaller buffers mean more
// rounds and more pipeline switching. Sweeps the column buffer over a 16x
// range at fixed N and reports measured wall time, rounds, and modeled
// paper-scale seconds.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 4, "processors"));
  const std::int64_t total_mib = cli.int_flag("total-mib", 32, "total data (MiB)");
  const double throttle =
      cli.double_flag("throttle-mbps", 30.0, "disk model MB/s (0 = off)");
  if (!cli.finish()) return 0;

  const std::size_t rec = 64;
  const std::uint64_t n = (static_cast<std::uint64_t>(total_mib) << 20) / rec;

  std::printf("== Buffer-size effect (paper §5), threaded columnsort ==\n");
  std::printf("N = %llu x %zu B, P = %d, disks throttled to %.0f MB/s\n",
              static_cast<unsigned long long>(n), rec, nranks, throttle);
  std::printf("%-14s %-10s %-12s %-14s %-22s\n", "buffer", "rounds", "wall s",
              "s/(GB/proc)", "modeled paper-scale");
  rule('-', 76);

  const core::CostModel model;
  for (std::uint64_t buffer = 1u << 22; buffer >= 1u << 18; buffer /= 4) {
    core::SortJob job;
    job.cfg.n = n;
    job.cfg.mem_per_rank = buffer / rec;
    job.cfg.nranks = nranks;
    job.cfg.ndisks = nranks;
    job.cfg.record_bytes = rec;
    job.cfg.stripe_block_bytes = 1 << 14;
    job.throttle.bandwidth_bytes_per_s = throttle * 1e6;
    job.workdir = workspace("bufsize");
    std::string why;
    auto plan = core::try_make_plan(core::Algo::kThreaded, job.cfg, &why);
    if (!plan) {
      std::printf("2^%-12.0f (infeasible: equation (1) at this buffer)\n",
                  std::log2(static_cast<double>(buffer)));
      continue;
    }
    const auto outcome = core::run_sort_job(job);
    const double gb_per_proc = static_cast<double>(n) * rec / nranks / (1 << 30);
    // Paper-scale: same buffer, 1 GB/proc on 16 ranks.
    const double paper_n = 16.0 * (1 << 30) / 64.0;
    const auto paper = model.profile(core::Algo::kThreaded, paper_n, 64, 16,
                                     static_cast<double>(buffer) * 512);  // scale to 2^24ish
    std::printf("2^%-12.0f %-10llu %-12.3f %-14.1f %-22.1f%s\n",
                std::log2(static_cast<double>(buffer)),
                static_cast<unsigned long long>(outcome.plan.rounds),
                outcome.metrics.wall_s, outcome.metrics.wall_s / gb_per_proc,
                model.seconds_per_gb_per_proc(paper, paper_n, 64, 16),
                outcome.verify.ok() ? "" : "  VERIFY FAILED");
    cleanup(job.workdir);
  }
  rule('-', 76);
  std::printf("Expected: wall time and modeled time increase as the buffer shrinks\n"
              "(more rounds -> more pipeline switching), the paper's §5 observation.\n");
  return 0;
}
