// §4's in-core distributed sort comparison: "We implemented three in-core
// multiprocessor sorting algorithms: bitonic sort, radix sort, and
// columnsort. We found that in-core columnsort ... was consistently faster
// than bitonic sort on problem sizes representative of those we encounter
// in the sort stage. Radix sort was competitive with in-core columnsort
// over a wide range of problem sizes."
//
// Reports, per (algorithm, n_local): wall time and exact network traffic —
// the key structural difference (radix's traffic depends on the key
// distribution; columnsort's and bitonic's do not, which is why the paper
// chose columnsort).
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "dist/dist_sort.hpp"
#include "record/generator.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace oocs;
using namespace oocs::bench;

namespace {

struct Result {
  double seconds = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t net_msgs = 0;
  bool sorted = true;
};

Result run_case(dist::DistSortAlgo algo, int nranks, std::uint64_t n_local,
                rec::Dist distkind, int iters) {
  const rec::RecordOps& ops = rec::record_ops<rec::Record64>();
  clu::Cluster cluster(nranks);
  Result result;
  const auto before = cluster.fabric().stats().snapshot();
  util::WallTimer timer;
  std::atomic<bool> sorted{true};
  for (int it = 0; it < iters; ++it) {
    cluster.run([&](clu::RankCtx& ctx) {
      std::vector<rec::Record64> local(n_local);
      rec::GenSpec spec{distkind, static_cast<std::uint64_t>(it) + 7, 0};
      rec::generate_records(local.data(), n_local, spec,
                            static_cast<std::uint64_t>(ctx.rank) * n_local);
      dist::DistSortCtx dctx{ctx.comm, &ops, static_cast<std::uint64_t>(it)};
      dist::dist_sort(algo, dctx, reinterpret_cast<std::byte*>(local.data()), n_local);
      if (!ops.is_sorted(reinterpret_cast<const std::byte*>(local.data()), n_local)) {
        sorted = false;
      }
    });
  }
  result.seconds = timer.seconds() / iters;
  const auto delta = cluster.fabric().stats().snapshot() - before;
  result.net_bytes = delta.net_bytes / static_cast<std::uint64_t>(iters);
  result.net_msgs = delta.net_messages / static_cast<std::uint64_t>(iters);
  result.sorted = sorted;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 4, "processors P"));
  const int iters = static_cast<int>(cli.int_flag("iters", 3, "iterations per point"));
  const std::int64_t max_local_log2 =
      cli.int_flag("max-local-log2", 16, "largest n_local = 2^k records per rank");
  if (!cli.finish()) return 0;

  std::printf("== Distributed in-core sort comparison (paper §4), P=%d, 64-B records ==\n",
              nranks);
  for (rec::Dist distkind : {rec::Dist::kUniform, rec::Dist::kFewDistinct}) {
    std::printf("\ninput distribution: %s\n", rec::dist_name(distkind));
    std::printf("%-12s %-12s %-12s %-14s %-12s %-8s\n", "n_local", "algorithm",
                "ms/sort", "MiB on net", "messages", "check");
    rule('-', 76);
    for (std::int64_t lg = 12; lg <= max_local_log2; lg += 2) {
      const std::uint64_t n_local = 1ull << lg;
      for (auto algo : {dist::DistSortAlgo::kColumnsort, dist::DistSortAlgo::kBitonic,
                        dist::DistSortAlgo::kRadix, dist::DistSortAlgo::kSample}) {
        if (algo == dist::DistSortAlgo::kColumnsort &&
            !dist::dist_columnsort_shape_ok(n_local, nranks)) {
          continue;
        }
        const Result r = run_case(algo, nranks, n_local, distkind, iters);
        std::printf("2^%-10lld %-12s %-12.2f %-14.2f %-12" PRIu64 " %-8s\n",
                    static_cast<long long>(lg), dist::dist_sort_algo_name(algo),
                    r.seconds * 1e3, mib(static_cast<double>(r.net_bytes)), r.net_msgs,
                    r.sorted ? "sorted" : "FAILED");
      }
    }
  }
  std::printf("\nStructural takeaway (paper's reason to pick columnsort): columnsort's\n"
              "and bitonic's traffic is identical across distributions (oblivious);\n"
              "radix's pattern and volume depend on the key bits.\n");
  return 0;
}
