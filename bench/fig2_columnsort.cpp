// Figure 2 reproduction: execution time per (GB of data per processor)
// versus total data sorted, for threaded / subblock / M-columnsort at two
// buffer sizes, plus 3-pass and 4-pass I/O-only baselines.
//
// Two layers (see DESIGN.md §5):
//   1. MEASURED — real end-to-end runs of all code paths at laptop scale
//      (default: up to 64 MiB total, P=4). Reported per point: wall time
//      normalized per GB/proc, the exact disk and network traffic, and how
//      I/O-bound the run was. Optional --throttle-mbps emulates the
//      paper's slow disks in real time.
//   2. MODELED — the analytic cost model (calibrated so the 3-pass I/O
//      baseline lands at the paper's ~170 s per GB/proc) evaluated at the
//      paper's exact configuration: P=16, 64-byte records, 4..32 GB,
//      buffers 2^24 and 2^25 bytes. This regenerates the Figure 2 series.
//
// Points the paper could not run (threaded beyond equation (1); subblock
// sizes that are not a power-of-4 multiple of the buffer) print as "-",
// reproducing the gaps in Figure 2.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

namespace {

struct MeasuredCell {
  double secs_per_gbproc = 0;
  double io_bound_fraction = 0;  // disk busy seconds / (wall * ranks)
  bool ok = false;
  bool ran = false;
};

MeasuredCell run_point(core::Algo algo, std::uint64_t n, std::uint64_t buffer_bytes,
                       int nranks, std::size_t rec, double throttle_mbps,
                       std::uint64_t seed) {
  MeasuredCell cell;
  core::SortJob job;
  job.cfg.n = n;
  job.cfg.mem_per_rank = buffer_bytes / rec;
  job.cfg.nranks = nranks;
  job.cfg.ndisks = nranks;
  job.cfg.record_bytes = rec;
  job.cfg.stripe_block_bytes = 1 << 16;
  job.algo = algo;
  job.gen.seed = seed;
  job.throttle.bandwidth_bytes_per_s = throttle_mbps * 1e6;
  job.workdir = workspace("fig2");
  std::string why;
  if (!core::try_make_plan(algo, job.cfg, &why)) return cell;  // gap in the figure
  cell.ran = true;
  const auto outcome = core::run_sort_job(job);
  cell.ok = outcome.verify.ok();
  const double gb_per_proc =
      static_cast<double>(n) * static_cast<double>(rec) / nranks / (1 << 30);
  cell.secs_per_gbproc = outcome.metrics.wall_s / gb_per_proc;
  double io_busy = 0;
  for (const auto& pass : outcome.metrics.passes) {
    io_busy += pass.stages.read + pass.stages.write;
  }
  cell.io_bound_fraction = io_busy / (outcome.metrics.wall_s * nranks);
  cleanup(job.workdir);
  return cell;
}

MeasuredCell run_baseline(int passes, std::uint64_t n, std::uint64_t buffer_bytes,
                          int nranks, std::size_t rec, double throttle_mbps) {
  MeasuredCell cell;
  core::JobConfig cfg;
  cfg.n = n;
  cfg.mem_per_rank = buffer_bytes / rec;
  cfg.nranks = nranks;
  cfg.ndisks = nranks;
  cfg.record_bytes = rec;
  cfg.stripe_block_bytes = 1 << 16;
  std::string why;
  auto plan = core::try_make_plan(core::Algo::kThreaded, cfg, &why);
  if (!plan) return cell;
  cell.ran = true;
  const auto dir = workspace("fig2base");
  vdisk::Throttle throttle;
  throttle.bandwidth_bytes_per_s = throttle_mbps * 1e6;
  vdisk::DiskArray disks(dir, cfg.ndisks, cfg.nranks, throttle);
  clu::Cluster cluster(cfg.nranks);
  const rec::RecordOps& ops = rec::record_ops_for_size(rec);
  rec::GenSpec gen{rec::Dist::kUniform, 1, 0};
  (void)core::generate_input(cluster, disks, *plan, cfg, ops, gen);
  const auto metrics = core::run_io_baseline(cluster, disks, *plan, cfg, passes);
  cell.ok = true;
  const double gb_per_proc =
      static_cast<double>(n) * static_cast<double>(rec) / nranks / (1 << 30);
  cell.secs_per_gbproc = metrics.wall_s / gb_per_proc;
  cell.io_bound_fraction = 1.0;
  cleanup(dir);
  return cell;
}

void print_cell(const MeasuredCell& cell) {
  if (!cell.ran) {
    std::printf("  %12s", "-");
  } else if (!cell.ok) {
    std::printf("  %12s", "FAILED");
  } else {
    std::printf("  %12.1f", cell.secs_per_gbproc);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 4, "processors P (= disks)"));
  const std::size_t rec =
      static_cast<std::size_t>(cli.int_flag("record-bytes", 64, "record size"));
  const std::int64_t max_mib =
      cli.int_flag("max-mib", 64, "largest total data size (MiB), halved twice for the sweep");
  const double throttle = cli.double_flag(
      "throttle-mbps", 0.0, "per-disk bandwidth model in MB/s (0 = unthrottled)");
  const bool paper_scale = cli.bool_flag("paper-scale", true, "print the modeled paper-scale table");
  const bool measured = cli.bool_flag("measured", true, "run the measured laptop-scale sweep");
  if (!cli.finish()) return 0;

  std::vector<std::uint64_t> totals_bytes;
  for (std::int64_t m = max_mib / 4; m <= max_mib; m *= 2) {
    totals_bytes.push_back(static_cast<std::uint64_t>(m) << 20);
  }
  const std::vector<std::uint64_t> buffers = {1u << 20, 1u << 21};

  if (measured) {
    std::printf("== Figure 2 (measured, scaled down): secs per (GB/processor) ==\n");
    std::printf("P=%d, %zu-byte records, buffers 2^20/2^21 bytes%s\n", nranks, rec,
                throttle > 0 ? ", throttled disks" : " (page-cache speeds; shapes, not"
                                                     " absolute paper numbers)");
    std::printf("%-38s", "series \\ total data");
    for (auto t : totals_bytes) std::printf("  %9.0f MiB", mib(static_cast<double>(t)));
    std::printf("\n");
    rule();
    for (auto algo : {core::Algo::kThreaded, core::Algo::kSubblock, core::Algo::kMColumn}) {
      for (auto buffer : buffers) {
        std::printf("%-28s buf=2^%2.0f", core::algo_name(algo),
                    std::log2(static_cast<double>(buffer)));
        for (auto total : totals_bytes) {
          print_cell(run_point(algo, total / rec, buffer, nranks, rec, throttle, 42));
        }
        std::printf("\n");
      }
    }
    for (int passes : {3, 4}) {
      std::printf("baseline I/O, %d passes          ", passes);
      for (auto total : totals_bytes) {
        print_cell(run_baseline(passes, total / rec, buffers.back(), nranks, rec, throttle));
      }
      std::printf("\n");
    }
    rule();
    std::printf("\n");
  }

  if (paper_scale) {
    const core::CostModel model;
    std::printf("== Figure 2 (modeled at paper scale): secs per (GB/processor) ==\n");
    std::printf("P=16, 64-byte records, Ultra-160 SCSI + Myrinet constants (see "
                "core/cost_model.hpp)\n");
    const std::vector<double> gbs = {4, 8, 16, 32};
    std::printf("%-38s", "series \\ total GB");
    for (double gb : gbs) std::printf("  %9.0f GB ", gb);
    std::printf("\n");
    rule();
    const double kGiB = 1024.0 * 1024 * 1024;
    for (auto algo : {core::Algo::kSubblock, core::Algo::kMColumn, core::Algo::kThreaded}) {
      for (double buffer : {16.0 * (1 << 20), 32.0 * (1 << 20)}) {
        std::printf("%-28s buf=2^%2.0f", core::algo_name(algo), std::log2(buffer));
        for (double gb : gbs) {
          const double n = gb * kGiB / 64.0;
          // Paper feasibility: equation (1) caps threaded at r*max_s(r)
          // records for column height r = buffer/record (4 GB at the
          // 2^24-byte buffer; the paper plotted threaded as single points
          // at 4 GB). Subblock covers sizes differing by 4x per buffer —
          // mirror those gaps.
          const double mem_records = buffer / 64.0;
          bool feasible = true;
          if (algo == core::Algo::kThreaded) {
            feasible = n <= static_cast<double>(core::max_records_threaded(
                                static_cast<std::uint64_t>(mem_records)));
          } else if (algo == core::Algo::kSubblock) {
            const double s = n / (16.0 * mem_records);  // columns at r = M/P
            const double l4 = std::log(s) / std::log(4.0);
            feasible = s >= 1 && std::abs(l4 - std::round(l4)) < 1e-9 &&
                       16.0 * mem_records >= 4.0 * s * std::sqrt(s);
          }
          if (!feasible) {
            std::printf("  %12s", "-");
            continue;
          }
          const auto passes = model.profile(algo, n, 64, 16, buffer);
          std::printf("  %12.1f", model.seconds_per_gb_per_proc(passes, n, 64, 16));
        }
        std::printf("\n");
      }
    }
    for (int passes : {4, 3}) {
      std::printf("baseline I/O, %d passes          ", passes);
      for (double gb : gbs) {
        const double n = gb * kGiB / 64.0;
        const auto profiles =
            model.profile_io_baseline(passes, n, 64, 16, 32.0 * (1 << 20));
        std::printf("  %12.1f", model.seconds_per_gb_per_proc(profiles, n, 64, 16));
      }
      std::printf("\n");
    }
    rule();
    std::printf("Expected shape (paper): baselines flat; threaded just above the 3-pass\n"
                "baseline (only at 4 GB); subblock just above the 4-pass baseline, at\n"
                "sizes 4x apart per buffer; M-columnsort above both baselines but below\n"
                "subblock, covering every size; smaller buffers slower.\n");
  }
  return 0;
}
