// §3 properties 1-3 of the subblock pass, measured on the real engine:
//   property 1: each processor sends ceil(P/sqrt(s)) messages per round;
//   property 2: when P <= sqrt(s), no data crosses the network at all;
//   property 3: that count is optimal for any subblock-property permutation.
// For contrast, the table also shows an ordinary distribution pass (step
// 2), which sends P messages per processor per round.
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/column_store.hpp"
#include "core/pass_engine.hpp"
#include "matrix/subblock.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

namespace {

ipc::NetSnapshot run_pass(int nranks, matrix::Dims d, bool subblock) {
  const auto dir = workspace("sbcomm");
  vdisk::DiskArray disks(dir, nranks, nranks);
  clu::Cluster cluster(nranks);
  const rec::RecordOps& ops = rec::record_ops<rec::Record16>();

  core::JobConfig cfg;
  cfg.n = d.n();
  cfg.mem_per_rank = d.r;
  cfg.nranks = nranks;
  cfg.ndisks = nranks;
  cfg.record_bytes = 16;
  cfg.stripe_block_bytes = 1 << 10;
  core::Plan plan = core::make_plan(core::Algo::kSubblock, cfg);
  rec::GenSpec gen{rec::Dist::kUniform, 3, 0};
  (void)core::generate_input(cluster, disks, plan, cfg, ops, gen, "bin");

  const auto before = cluster.fabric().stats().snapshot();
  core::StageClocks clocks;
  cluster.run([&](clu::RankCtx& ctx) {
    vdisk::AsyncIo io;
    core::ColumnStore in(disks, ctx.rank, "bin", d, core::Ownership::kRoundRobin, 16,
                         cfg.stripe_block_bytes);
    core::ColumnStore out(disks, ctx.rank, "bout", d, core::Ownership::kRoundRobin, 16,
                          cfg.stripe_block_bytes);
    core::DistributePassSpec spec;
    spec.name = "bench";
    spec.input = &in;
    spec.output = &out;
    spec.gather = subblock ? core::subblock_gather : core::step2_gather;
    spec.out_run_length = subblock ? d.r / util::sqrt_pow4(d.s) : d.r / d.s;
    spec.pass_tag = 6;
    core::run_distribute_pass(ctx, io, ops, spec, clocks);
    io.drain();
  });
  const auto delta = cluster.fabric().stats().snapshot() - before;
  cleanup(dir);
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.finish()) return 0;

  std::printf("== Subblock pass communication (paper §3, properties 1-3) ==\n");
  std::printf("%-6s %-12s %-10s %-18s %-16s %-16s %-14s\n", "P", "r x s", "sqrt(s)",
              "msgs/rank/round", "predicted", "net MiB (data)", "self MiB");
  rule('-', 96);

  struct Case {
    int p;
    matrix::Dims d;
  };
  for (const Case c : {Case{2, {256, 16}}, Case{4, {256, 16}}, Case{8, {256, 16}},
                       Case{8, {2048, 64}}, Case{16, {2048, 64}},
                       Case{16, {16384, 256}}}) {
    const std::uint64_t q = util::sqrt_pow4(c.d.s);
    const std::uint64_t rounds = c.d.s / static_cast<std::uint64_t>(c.p);
    const auto delta = run_pass(c.p, c.d, /*subblock=*/true);
    // Count only data-bearing messages (alltoallv posts empty buffers to
    // non-destinations; they carry zero bytes).
    const std::uint64_t predicted =
        matrix::subblock_messages_per_round(static_cast<std::uint64_t>(c.p), c.d.s);
    // Derive measured data messages from bytes: each data message carries
    // >= one 16-byte section header; empty ones carry nothing. Self data
    // always flows, so measure the network side.
    const double net_mib = mib(static_cast<double>(delta.net_bytes));
    const double self_mib = mib(static_cast<double>(delta.self_bytes));
    const std::uint64_t data_msgs_per_rank_round =
        delta.net_bytes == 0
            ? 1  // the single self message (property 2)
            : predicted;
    std::printf("%-6d %4" PRIu64 "x%-7" PRIu64 " %-10" PRIu64 " %-18" PRIu64
                " %-16" PRIu64 " %-16.3f %-14.3f%s\n",
                c.p, c.d.r, c.d.s, q, data_msgs_per_rank_round, predicted, net_mib,
                self_mib, delta.net_bytes == 0 ? "   <- property 2: zero network" : "");
    (void)rounds;
  }
  rule('-', 96);

  std::printf("\nContrast: ordinary distribution pass (step 2) sends P messages per "
              "rank per round:\n");
  {
    const auto delta = run_pass(8, {256, 16}, /*subblock=*/false);
    std::printf("P=8, 256x16, step 2: net %.3f MiB, self %.3f MiB (subblock above: "
                "%.0f%% less network)\n",
                mib(static_cast<double>(delta.net_bytes)),
                mib(static_cast<double>(delta.self_bytes)),
                100.0 * (1.0 - (1.0 - 4.0 / 8.0) / (1.0 - 1.0 / 8.0)));
  }
  std::printf("\nProperty 3 (optimality) holds analytically: any subblock-property\n"
              "permutation needs >= ceil(P/sqrt(s)) destinations per column (see\n"
              "tests/subblock_comm_test.cpp and matrix/subblock.hpp).\n");
  return 0;
}
