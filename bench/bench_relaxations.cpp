// Ablation across the whole relaxation family (paper §§3-4 plus both §6
// future-work algorithms): threaded, subblock, M-columnsort, the 4-pass
// hybrid, and grouped columnsort at every group size.
//
// For one (N, P, record size) the table reports, per algorithm:
//   * measured wall seconds and verification status,
//   * exact disk traffic (bytes, seeks) and network traffic (bytes,
//     messages) — the counters an MPI/SCSI run would see,
//   * the maximum N each algorithm could reach with this memory (the
//     bound family (1), (2), (3), and both §6 extensions).
//
// The shape to expect: disk bytes scale with pass count (3 passes for
// threaded / M / grouped, 4 for subblock / hybrid); network bytes grow
// with the column height interpretation (threaded < grouped g=2 < ... <
// M-columnsort), which is exactly the paper's stated trade-off.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

namespace {

struct Row {
  std::string label;
  int passes = 0;
  double wall_s = 0;
  std::uint64_t disk_bytes = 0;
  std::uint64_t disk_seeks = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t net_msgs = 0;
  std::uint64_t max_records = 0;
  bool ok = false;
  bool ran = false;
};

Row run_row(const std::string& label, core::Algo algo, int group_size,
            const core::JobConfig& base, std::uint64_t seed) {
  Row row;
  row.label = label;
  core::SortJob job;
  job.cfg = base;
  job.cfg.group_size = group_size;
  job.algo = algo;
  job.gen.seed = seed;
  job.workdir = workspace("relax-" + label);
  std::string why;
  if (!core::try_make_plan(algo, job.cfg, &why)) {
    return row;
  }
  row.ran = true;
  const auto outcome = core::run_sort_job(job);
  row.ok = outcome.verify.ok();
  row.passes = outcome.plan.passes;
  row.wall_s = outcome.metrics.wall_s;
  for (const auto& pass : outcome.metrics.passes) {
    row.disk_bytes += pass.disk.bytes_read + pass.disk.bytes_written;
    row.disk_seeks += pass.disk.seeks;
    row.net_bytes += pass.net.net_bytes;
    row.net_msgs += pass.net.net_messages;
  }
  switch (algo) {
    case core::Algo::kThreaded:
      row.max_records = core::max_records_threaded(base.mem_per_rank);
      break;
    case core::Algo::kSubblock:
      row.max_records = core::max_records_subblock(base.mem_per_rank);
      break;
    case core::Algo::kMColumn:
      row.max_records = core::max_records_mcolumn(base.mem_per_rank, base.nranks);
      break;
    case core::Algo::kHybrid:
      row.max_records = core::max_records_hybrid(base.mem_per_rank, base.nranks);
      break;
    case core::Algo::kGrouped:
      row.max_records = core::max_records_grouped(base.mem_per_rank, group_size);
      break;
  }
  cleanup(job.workdir);
  return row;
}

void print_row(const Row& row) {
  if (!row.ran) {
    std::printf("%-22s %s\n", row.label.c_str(), "- (infeasible at this config)");
    return;
  }
  std::printf("%-22s %-7d %-9.3f %-11.1f %-9" PRIu64 " %-11.2f %-9" PRIu64
              " %-12" PRIu64 " %s\n",
              row.label.c_str(), row.passes, row.wall_s, mib(static_cast<double>(row.disk_bytes)),
              row.disk_seeks, mib(static_cast<double>(row.net_bytes)), row.net_msgs,
              row.max_records, row.ok ? "ok" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.int_flag("ranks", 8, "processors P (= disks)"));
  const std::int64_t n_log2 = cli.int_flag("n-log2", 15, "records to sort, log2");
  const std::int64_t mem_log2 =
      cli.int_flag("mem-log2", 11, "records of memory per rank, log2");
  const std::size_t rec =
      static_cast<std::size_t>(cli.int_flag("record-bytes", 64, "record size"));
  if (!cli.finish()) return 0;

  core::JobConfig base;
  base.n = 1ull << n_log2;
  base.mem_per_rank = 1ull << mem_log2;
  base.nranks = nranks;
  base.ndisks = nranks;
  base.record_bytes = rec;
  base.stripe_block_bytes = 1 << 12;

  std::printf("== The relaxation family: N=2^%lld records x %zu B, P=%d, M/P=2^%lld ==\n",
              static_cast<long long>(n_log2), rec, nranks,
              static_cast<long long>(mem_log2));
  std::printf("%-22s %-7s %-9s %-11s %-9s %-11s %-9s %-12s %s\n", "algorithm", "passes",
              "wall s", "disk MiB", "seeks", "net MiB", "msgs", "max N", "check");
  rule('-', 110);
  print_row(run_row("threaded", core::Algo::kThreaded, 0, base, 7));
  print_row(run_row("subblock", core::Algo::kSubblock, 0, base, 7));
  for (int g = 2; g <= nranks / 2; g *= 2) {
    print_row(run_row("grouped g=" + std::to_string(g), core::Algo::kGrouped, g, base, 7));
  }
  print_row(run_row("grouped g=P", core::Algo::kGrouped, nranks, base, 7));
  print_row(run_row("m-columnsort", core::Algo::kMColumn, 0, base, 7));
  print_row(run_row("hybrid", core::Algo::kHybrid, 0, base, 7));
  rule('-', 110);
  std::printf(
      "Expected shape: 4-pass algorithms (subblock, hybrid) move 4/3 the disk bytes of\n"
      "3-pass ones; network bytes grow with the height interpretation (threaded <\n"
      "grouped g=2 < ... < g=P = m-columnsort); max N grows the same way, with the\n"
      "hybrid dominating everything (its bound is (2) evaluated at M).\n");
  return 0;
}
