// Problem-size bound tables: equations (1), (2), (3) and the paper's
// quantitative claims (§1: subblock more than doubles max N at
// M/P >= 2^12; §1/§4: 1 TB on 16 procs at M/P = 2^19 with 64-B records;
// §5: M-columnsort beats subblock in max problem size iff M < 32 P^10).
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/params.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"

using namespace oocs;
using namespace oocs::bench;

namespace {

double to_gib(std::uint64_t records, std::uint64_t rec_bytes) {
  return static_cast<double>(records) * static_cast<double>(rec_bytes) /
         (1024.0 * 1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t rec =
      static_cast<std::uint64_t>(cli.int_flag("record-bytes", 64, "record size"));
  if (!cli.finish()) return 0;

  std::printf("== Maximum problem size per algorithm (records; %" PRIu64
              "-byte records) ==\n",
              rec);
  std::printf("%-10s %-22s %-22s %-26s %-26s %-10s\n", "M/P", "threaded (eq. 1)",
              "subblock (eq. 2)", "M-columnsort P=16 (eq. 3)",
              "hybrid P=16 (future work)", "gain 2/1");
  rule();
  for (unsigned lg = 10; lg <= 26; lg += 2) {
    const std::uint64_t mem = 1ull << lg;
    const std::uint64_t n1 = core::max_records_threaded(mem);
    const std::uint64_t n2 = core::max_records_subblock(mem);
    const std::uint64_t n3 = core::max_records_mcolumn(mem, 16);
    const std::uint64_t n4 = core::max_records_hybrid(mem, 16);
    std::printf("2^%-8u %-10" PRIu64 " (%6.2f GiB) %-10" PRIu64
                " (%6.2f GiB) %-12" PRIu64 " (%8.1f GiB) %-12" PRIu64
                " (%8.1f GiB) %5.1fx\n",
                lg, n1, to_gib(n1, rec), n2, to_gib(n2, rec), n3, to_gib(n3, rec),
                n4, to_gib(n4, rec),
                static_cast<double>(n2) / static_cast<double>(n1));
  }
  rule();
  std::printf("Paper claim (§1): for M/P >= 2^12, subblock at least doubles max N — "
              "check the 'gain' column.\n\n");

  std::printf("== The terabyte claim (§1): P=16, M/P = 2^19 records, 64-byte records ==\n");
  const std::uint64_t tb_records = core::max_records_mcolumn(1u << 19, 16);
  std::printf("max N = %" PRIu64 " records = %.0f GiB = %.2f TiB at 64 B/record\n\n",
              tb_records, to_gib(tb_records, 64), to_gib(tb_records, 64) / 1024.0);

  std::printf("== Crossover (§5): M-columnsort sorts more than subblock iff M < 32 P^10 ==\n");
  std::printf("%-6s %-14s %-34s\n", "P", "threshold M", "verified against exact bounds");
  rule();
  for (int p = 2; p <= 32; p *= 2) {
    // 32 P^10 = 2^(5 + 10 lg P).
    const unsigned lg_threshold =
        5 + 10 * static_cast<unsigned>(std::log2(static_cast<double>(p)));
    bool below_ok = true, above_ok = true;
    if (lg_threshold >= 1 && lg_threshold <= 62) {
      const std::uint64_t below = 1ull << (lg_threshold - 1);
      below_ok = core::mcolumn_beats_subblock(below, p);
      const std::uint64_t above = 1ull << lg_threshold;
      above_ok = !core::mcolumn_beats_subblock(above, p);
    }
    std::printf("%-6d 2^%-12u %s\n", p, lg_threshold,
                below_ok && above_ok ? "OK (flips exactly at the threshold)"
                                     : "MISMATCH");
  }
  rule();
  std::printf("\n== Eligible problem sizes per buffer (the paper's Figure 2 gaps) ==\n");
  std::printf("subblock requires s to be a power of 4: for a fixed buffer, runnable\n"
              "N differ by factors of 4; M-columnsort covers every power-of-2 N.\n");
  for (std::uint64_t buffer : {1ull << 24, 1ull << 25}) {
    const std::uint64_t r = buffer / rec;
    std::printf("buffer=2^%2.0f B (r=%" PRIu64 " records): subblock N ∈ {",
                std::log2(static_cast<double>(buffer)), r);
    for (std::uint64_t s = 4; 4 * s * util::sqrt_pow4(s) <= r && s <= 1u << 20; s *= 4) {
      std::printf(" %" PRIu64, r * s);
    }
    std::printf(" } records\n");
  }
  return 0;
}
